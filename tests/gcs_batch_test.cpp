// Sequencer-batching tests: the batched wire path (SeqBatch/SubmitBatch)
// must be an invisible transport optimisation — same total order, same
// exactly-once guarantee, same failover behaviour as max_batch_msgs=1.
#include <gtest/gtest.h>

#include <algorithm>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/watchdog.hpp"
#include "gcs/group_service.hpp"

namespace adets::gcs {
namespace {

using common::Bytes;
using common::GroupId;
using common::NodeId;

Bytes text(const std::string& s) { return Bytes(s.begin(), s.end()); }

struct Sink {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::string> messages;
  std::vector<std::uint32_t> views;

  GroupCallbacks callbacks() {
    GroupCallbacks cb;
    cb.deliver = [this](GroupId, const Sequenced& m) {
      const std::lock_guard<std::mutex> guard(mutex);
      messages.emplace_back(m.submission.payload.data(),
                            m.submission.payload.data() + m.submission.payload.size());
      cv.notify_all();
    };
    cb.on_view = [this](GroupId, const View& v) {
      const std::lock_guard<std::mutex> guard(mutex);
      views.push_back(v.id.value());
      cv.notify_all();
    };
    return cb;
  }
  bool wait_count(std::size_t n, std::chrono::seconds timeout = std::chrono::seconds(20)) {
    std::unique_lock<std::mutex> lock(mutex);
    return cv.wait_for(lock, timeout, [&] { return messages.size() >= n; });
  }
  bool wait_view(std::chrono::seconds timeout = std::chrono::seconds(20)) {
    std::unique_lock<std::mutex> lock(mutex);
    return cv.wait_for(lock, timeout, [&] { return !views.empty(); });
  }
  std::vector<std::string> snapshot() {
    const std::lock_guard<std::mutex> guard(mutex);
    return messages;
  }
};

/// Builds an n-member group (plus optional externals) with one config.
class BatchCluster {
 public:
  BatchCluster(transport::SimNetwork& net, int members, int externals,
               const GcsConfig& config) {
    for (int i = 0; i < members + externals; ++i) nodes_.push_back(net.create_node());
    for (int i = 0; i < members + externals; ++i) {
      services_.push_back(std::make_unique<GroupService>(net, nodes_[i], config));
    }
    std::vector<NodeId> group_members(nodes_.begin(), nodes_.begin() + members);
    for (int i = 0; i < members; ++i) {
      sinks_.push_back(std::make_unique<Sink>());
      services_[i]->join(kGroup, group_members, sinks_.back()->callbacks());
    }
    for (int i = members; i < members + externals; ++i) {
      services_[i]->connect(kGroup, group_members);
    }
  }
  ~BatchCluster() {
    for (auto& s : services_) s->stop();
  }

  static constexpr GroupId kGroup{42};

  [[nodiscard]] GroupService& service(int i) { return *services_[i]; }
  [[nodiscard]] Sink& sink(int i) { return *sinks_[i]; }
  [[nodiscard]] NodeId node(int i) const { return nodes_[i]; }

 private:
  std::vector<NodeId> nodes_;
  std::vector<std::unique_ptr<GroupService>> services_;
  std::vector<std::unique_ptr<Sink>> sinks_;
};

constexpr GroupId BatchCluster::kGroup;

class GcsBatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_scale_ = common::Clock::scale();
    common::Clock::set_scale(0.01);
    net_ = std::make_unique<transport::SimNetwork>();
  }
  void TearDown() override {
    net_->stop();
    common::Clock::set_scale(saved_scale_);
  }

  static GcsConfig batched_config() {
    GcsConfig config;
    config.max_batch_msgs = 4;
    config.batch_flush_delay = std::chrono::milliseconds(40);
    config.timer_tick = std::chrono::milliseconds(5);
    config.suspect_timeout = std::chrono::seconds(30);  // no spurious views
    return config;
  }

  double saved_scale_ = 1.0;
  std::unique_ptr<transport::SimNetwork> net_;
};

TEST_F(GcsBatchTest, PartialBatchIsFlushedByTimer) {
  // Fewer submissions than max_batch_msgs: nothing forces a flush, so
  // delivery depends on the batch_flush_delay timer alone.
  GcsConfig config = batched_config();
  config.max_batch_msgs = 64;
  BatchCluster cluster(*net_, 2, 1, config);
  for (int i = 0; i < 3; ++i) {
    cluster.service(2).submit(BatchCluster::kGroup, text("p" + std::to_string(i)));
  }
  ASSERT_TRUE(cluster.sink(0).wait_count(3));
  ASSERT_TRUE(cluster.sink(1).wait_count(3));
  EXPECT_EQ(cluster.sink(0).snapshot(), cluster.sink(1).snapshot());
  EXPECT_EQ(cluster.sink(0).snapshot().size(), 3u);
}

TEST_F(GcsBatchTest, BatchedDeliveryMatchesUnbatchedOrder) {
  // Same workload through max_batch_msgs=1 (the pre-batching wire shape)
  // and through aggressive batching: both must deliver the submission
  // sequence verbatim on every member.  The sequencer submits to itself,
  // so the expected order is exactly the submission order.
  std::vector<std::string> expected;
  for (int i = 0; i < 12; ++i) expected.push_back("m" + std::to_string(i));

  for (const bool batched : {false, true}) {
    GcsConfig config = batched_config();
    if (!batched) {
      config.max_batch_msgs = 1;
      config.batch_flush_delay = std::chrono::milliseconds(0);
    }
    BatchCluster cluster(*net_, 3, 0, config);
    for (const auto& m : expected) {
      cluster.service(0).submit(BatchCluster::kGroup, text(m));
    }
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(cluster.sink(i).wait_count(expected.size())) << "member " << i;
      EXPECT_EQ(cluster.sink(i).snapshot(), expected)
          << "member " << i << " batched=" << batched;
    }
  }
}

TEST_F(GcsBatchTest, DuplicatesAcrossBatchBoundariesAreFiltered) {
  // Cut sequencer -> submitter, so the submitter never sees its message
  // sequenced and retries into later sequencing rounds (and, via target
  // rotation, through other members).  The duplicates land in different
  // batches; dedup must still collapse them to one delivery.
  GcsConfig config = batched_config();
  config.retransmit_interval = std::chrono::milliseconds(30);
  BatchCluster cluster(*net_, 3, 0, config);

  transport::LinkConfig dead;
  dead.drop_probability = 1.0;
  net_->set_link(cluster.node(0), cluster.node(1), dead);

  cluster.service(1).submit(BatchCluster::kGroup, text("dup"));
  // Interleave other traffic so retries fall into distinct batches.
  for (int i = 0; i < 6; ++i) {
    cluster.service(2).submit(BatchCluster::kGroup, text("f" + std::to_string(i)));
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  net_->set_link(cluster.node(0), cluster.node(1), transport::LinkConfig{});

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(cluster.sink(i).wait_count(7)) << "member " << i;
  }
  // Allow would-be duplicates to arrive, then check exactly-once.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const auto log0 = cluster.sink(0).snapshot();
  EXPECT_EQ(std::count(log0.begin(), log0.end(), "dup"), 1);
  EXPECT_EQ(log0.size(), 7u);
  EXPECT_EQ(cluster.sink(1).snapshot(), log0);
  EXPECT_EQ(cluster.sink(2).snapshot(), log0);
}

TEST_F(GcsBatchTest, FailoverResequencesUnflushedBatch) {
  common::Watchdog dog("gcs batch failover", std::chrono::seconds(120));
  // A huge flush delay parks submissions in the sequencer's open batch;
  // crashing the sequencer before the flush must not lose them — the
  // senders still hold them as unacked pendings and re-submit into the
  // new view, where the new sequencer assigns fresh sequence numbers.
  // The flush delay applies in the new view too, so a third message
  // after failover fills the batch to max_batch_msgs and forces the
  // cap-based flush.
  GcsConfig config = batched_config();
  config.max_batch_msgs = 3;
  config.batch_flush_delay = std::chrono::seconds(30);
  config.suspect_timeout = std::chrono::milliseconds(150);
  BatchCluster cluster(*net_, 3, 0, config);

  cluster.service(1).submit(BatchCluster::kGroup, text("held-1"));
  cluster.service(2).submit(BatchCluster::kGroup, text("held-2"));
  // Let the submissions reach the sequencer's open batch, then kill it.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(cluster.sink(1).snapshot().empty());  // batch still held
  net_->crash(cluster.node(0));

  ASSERT_TRUE(cluster.sink(1).wait_view(std::chrono::seconds(30)));
  cluster.service(2).submit(BatchCluster::kGroup, text("flusher"));

  ASSERT_TRUE(cluster.sink(1).wait_count(3, std::chrono::seconds(30)));
  ASSERT_TRUE(cluster.sink(2).wait_count(3, std::chrono::seconds(30)));
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const auto log1 = cluster.sink(1).snapshot();
  EXPECT_EQ(log1.size(), 3u);
  EXPECT_EQ(std::count(log1.begin(), log1.end(), "held-1"), 1);
  EXPECT_EQ(std::count(log1.begin(), log1.end(), "held-2"), 1);
  EXPECT_EQ(std::count(log1.begin(), log1.end(), "flusher"), 1);
  EXPECT_EQ(cluster.sink(2).snapshot(), log1);
}

}  // namespace
}  // namespace adets::gcs
