// Property-based determinism tests.
//
// A seeded generator produces random request mixes (computations,
// single/double/reentrant locks, timed waits, notifies); three replicas
// execute them under adversarial per-replica timing perturbation.  The
// property: per-mutex state-access order, per-mutex lock-grant order and
// every wait outcome agree across replicas, for every scheduler and
// every seed.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "sched_harness.hpp"

namespace adets::testing {
namespace {

using common::paper_ms;
using sched::SchedulerKind;

std::chrono::milliseconds ms(int n) { return std::chrono::milliseconds(n); }

/// Projects "mX:..." trace entries onto per-mutex sequences.
std::map<std::string, std::vector<std::string>> project(
    const std::vector<std::string>& trace) {
  std::map<std::string, std::vector<std::string>> result;
  for (const auto& entry : trace) {
    result[entry.substr(0, entry.find(':'))].push_back(entry);
  }
  return result;
}

/// Internal scheduler mutexes (PDS request queue) are granted in an
/// endless idle cycle, so replicas are snapshot at different progress
/// points; they are checked separately as a prefix property.
bool is_internal_mutex(std::uint64_t id) { return id >= (1ULL << 61); }

std::map<std::uint64_t, std::vector<std::uint64_t>> grant_projection(
    const std::vector<sched::GrantRecord>& trace) {
  std::map<std::uint64_t, std::vector<std::uint64_t>> result;
  for (const auto& record : trace) {
    if (is_internal_mutex(record.mutex.value())) continue;
    result[record.mutex.value()].push_back(record.thread.value());
  }
  return result;
}

/// True when one sequence is a prefix of the other, per internal mutex.
bool internal_grants_prefix_consistent(const std::vector<sched::GrantRecord>& a,
                                       const std::vector<sched::GrantRecord>& b) {
  std::map<std::uint64_t, std::vector<std::uint64_t>> pa;
  std::map<std::uint64_t, std::vector<std::uint64_t>> pb;
  for (const auto& r : a) {
    if (is_internal_mutex(r.mutex.value())) pa[r.mutex.value()].push_back(r.thread.value());
  }
  for (const auto& r : b) {
    if (is_internal_mutex(r.mutex.value())) pb[r.mutex.value()].push_back(r.thread.value());
  }
  for (const auto& [mutex, seq_a] : pa) {
    const auto it = pb.find(mutex);
    if (it == pb.end()) continue;
    const auto& seq_b = it->second;
    const std::size_t n = std::min(seq_a.size(), seq_b.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (seq_a[i] != seq_b[i]) return false;
    }
  }
  return true;
}

using Param = std::tuple<SchedulerKind, int>;  // kind, seed

class DeterminismProperty : public ::testing::TestWithParam<Param> {
 protected:
  void SetUp() override {
    saved_scale_ = common::Clock::scale();
    common::Clock::set_scale(0.05);
  }
  void TearDown() override { common::Clock::set_scale(saved_scale_); }
  double saved_scale_ = 1.0;
};

TEST_P(DeterminismProperty, RandomWorkloadStaysConsistent) {
  const auto [kind, seed] = GetParam();
  sched::SchedulerConfig config;
  config.pds_thread_pool = 5;
  SchedulerCluster cluster(kind, 3, config);

  cluster.set_perturbation([seed](int replica, std::uint64_t request) {
    common::Rng rng(static_cast<std::uint64_t>(replica * 104729 + seed) ^ request);
    common::Clock::sleep_real(ms(static_cast<int>(rng.uniform(0, 3))));
  });
  cluster.set_auto_reply(ms(2));

  constexpr int kRequests = 14;
  for (int i = 0; i < kRequests; ++i) {
    common::Rng gen(static_cast<std::uint64_t>(seed) * 1000 + i);
    const std::uint64_t m = 1 + gen.uniform(0, 2);   // mutexes 1..3
    const std::uint64_t m2 = 1 + gen.uniform(0, 2);  // second mutex
    const int body_kind = static_cast<int>(gen.uniform(0, 6));
    const int compute = static_cast<int>(gen.uniform(0, 2));
    cluster.set_body(i, [=](BodyCtx& ctx) {
      switch (body_kind) {
        case 0:  // compute - lock - access - unlock
          ctx.compute(ms(compute));
          ctx.lock(m);
          ctx.trace("m" + std::to_string(m) + ":r" + std::to_string(i));
          ctx.unlock(m);
          break;
        case 1:  // lock - access - compute - unlock
          ctx.lock(m);
          ctx.trace("m" + std::to_string(m) + ":r" + std::to_string(i));
          ctx.compute(ms(compute));
          ctx.unlock(m);
          break;
        case 2: {  // ordered double lock
          const std::uint64_t first = std::min(m, m2);
          const std::uint64_t second = std::max(m, m2);
          ctx.lock(first);
          if (second != first) ctx.lock(second);
          ctx.trace("m" + std::to_string(first) + ":r" + std::to_string(i) + "-dual");
          if (second != first) ctx.unlock(second);
          ctx.unlock(first);
          break;
        }
        case 3:  // reentrant lock
          ctx.lock(m);
          ctx.lock(m);
          ctx.trace("m" + std::to_string(m) + ":r" + std::to_string(i) + "-re");
          ctx.unlock(m);
          ctx.unlock(m);
          break;
        case 4: {  // bounded wait; outcome must agree across replicas
          ctx.lock(m);
          const bool notified = ctx.wait_for(m, 50 + m, paper_ms(60));
          ctx.trace("m" + std::to_string(m) + ":r" + std::to_string(i) +
                    (notified ? "-notified" : "-timeout"));
          ctx.unlock(m);
          break;
        }
        case 5:  // notify
          ctx.compute(ms(compute));
          ctx.lock(m);
          ctx.trace("m" + std::to_string(m) + ":r" + std::to_string(i) + "-notify");
          ctx.notify_all(m, 50 + m);
          ctx.unlock(m);
          break;
        default:  // nested invocation, then a synchronized state update
          ctx.nested_call(9000 + static_cast<std::uint64_t>(i));
          ctx.lock(m);
          ctx.trace("m" + std::to_string(m) + ":r" + std::to_string(i) + "-postnested");
          ctx.unlock(m);
          break;
      }
    });
  }
  for (int i = 0; i < kRequests; ++i) cluster.submit(i);
  ASSERT_TRUE(cluster.wait_completed(kRequests, std::chrono::seconds(60)))
      << "kind=" << sched::to_string(kind) << " seed=" << seed;
  // Internal timeout-handler executions (spawned by wait timers) are not
  // counted in completed_requests; give them time to quiesce before
  // comparing grant traces.
  common::Clock::sleep_real(ms(150));

  const auto reference_trace = project(cluster.trace(0));
  const auto reference_grants = grant_projection(cluster.replica(0).grant_trace());
  for (int r = 1; r < 3; ++r) {
    EXPECT_EQ(project(cluster.trace(r)), reference_trace)
        << "trace divergence at replica " << r << " seed " << seed;
    EXPECT_EQ(grant_projection(cluster.replica(r).grant_trace()), reference_grants)
        << "grant divergence at replica " << r << " seed " << seed;
    EXPECT_TRUE(internal_grants_prefix_consistent(cluster.replica(0).grant_trace(),
                                                  cluster.replica(r).grant_trace()))
        << "internal grant divergence at replica " << r << " seed " << seed;
  }
}

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  return sched::to_string(std::get<0>(info.param)) + "_seed" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DeterminismProperty,
    ::testing::Combine(::testing::Values(SchedulerKind::kSat, SchedulerKind::kMat,
                                         SchedulerKind::kLsa, SchedulerKind::kPds),
                       ::testing::Range(0, 8)),
    param_name);

}  // namespace
}  // namespace adets::testing
