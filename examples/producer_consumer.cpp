// Producer/consumer example: replicated bounded buffer coordinated with
// condition variables (paper Sec. 5.5).
//
//   ./producer_consumer [SAT|MAT|LSA|PDS] [pairs] [items]
//
// `pairs` producer clients and `pairs` consumer clients exchange
// `items` values each through a capacity-2 replicated buffer.  With
// PDS, watch the pool grow automatically when all workers block in
// wait() (the ADETS-PDS deadlock-avoidance extension).
#include <atomic>
#include <cstdio>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "replication/consistency.hpp"
#include "runtime/cluster.hpp"
#include "workload/objects.hpp"

using namespace adets;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "SAT";
  const int pairs = argc > 2 ? std::atoi(argv[2]) : 3;
  const int items = argc > 3 ? std::atoi(argv[3]) : 20;

  sched::SchedulerKind kind = sched::SchedulerKind::kSat;
  for (const auto candidate :
       {sched::SchedulerKind::kSat, sched::SchedulerKind::kMat,
        sched::SchedulerKind::kLsa, sched::SchedulerKind::kPds}) {
    if (sched::to_string(candidate) == name) kind = candidate;
  }

  runtime::Cluster cluster;
  sched::SchedulerConfig config;
  config.pds_thread_pool = static_cast<std::size_t>(2 * pairs);
  const auto buffer = cluster.create_group(
      3, kind, [] { return std::make_unique<workload::BoundedBuffer>(2); }, config);

  std::vector<runtime::Client*> producers;
  std::vector<runtime::Client*> consumers;
  for (int p = 0; p < pairs; ++p) producers.push_back(&cluster.create_client());
  for (int c = 0; c < pairs; ++c) consumers.push_back(&cluster.create_client());

  std::atomic<std::uint64_t> consumed_sum{0};
  const auto start = common::Clock::now();
  std::vector<std::thread> threads;
  for (int p = 0; p < pairs; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < items; ++i) {
        producers[p]->invoke(buffer, "produce",
                             workload::pack_u64(static_cast<std::uint64_t>(p * items + i)));
      }
    });
  }
  for (int c = 0; c < pairs; ++c) {
    threads.emplace_back([&, c] {
      for (int i = 0; i < items; ++i) {
        const auto reply =
            workload::unpack_u64(consumers[c]->invoke(buffer, "consume", {}));
        consumed_sum.fetch_add(reply[0]);
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto elapsed = common::Clock::now() - start;

  // Let every replica finish executing before comparing state (clients
  // only wait for the first reply).
  (void)cluster.wait_drained(buffer, static_cast<std::uint64_t>(2 * pairs) * items);

  // Every produced value was consumed exactly once.
  const std::uint64_t total = static_cast<std::uint64_t>(pairs) * items;
  const std::uint64_t expected_sum = total * (total - 1) / 2;
  const auto report = repl::check_group(cluster, buffer);
  std::printf("%s: %d pairs x %d items in %.1f ms real\n",
              sched::to_string(kind).c_str(), pairs, items,
              std::chrono::duration<double, std::milli>(elapsed).count());
  std::printf("checksum: %s, replicas consistent: %s\n",
              consumed_sum.load() == expected_sum ? "ok" : "MISMATCH",
              report.consistent() ? "yes" : "NO");
  return (consumed_sum.load() == expected_sum && report.consistent()) ? 0 : 1;
}
