// Bank example: concurrent clients, fine-grained locking, blocking
// timed withdrawals, transfers — the kind of replicated service the
// paper's introduction motivates.
//
//   ./bank [SEQ|SL|SAT|MAT|LSA|PDS] [clients] [ops]
//
// Prints per-scheduler wall time and verifies replica consistency.
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "replication/consistency.hpp"
#include "runtime/cluster.hpp"
#include "workload/objects.hpp"

using namespace adets;

constexpr int kAccounts = 8;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "MAT";
  const int clients = argc > 2 ? std::atoi(argv[2]) : 4;
  const int ops = argc > 3 ? std::atoi(argv[3]) : 25;

  sched::SchedulerKind kind = sched::SchedulerKind::kMat;
  for (const auto candidate :
       {sched::SchedulerKind::kSeq, sched::SchedulerKind::kSl, sched::SchedulerKind::kSat,
        sched::SchedulerKind::kMat, sched::SchedulerKind::kLsa, sched::SchedulerKind::kPds}) {
    if (sched::to_string(candidate) == name) kind = candidate;
  }

  runtime::Cluster cluster;
  sched::SchedulerConfig config;
  config.pds_thread_pool = static_cast<std::size_t>(clients);
  const auto bank = cluster.create_group(
      3, kind, [] { return std::make_unique<workload::BankAccounts>(kAccounts); }, config);

  // Seed every account so withdrawals mostly succeed.
  runtime::Client& seeder = cluster.create_client();
  for (int account = 0; account < kAccounts; ++account) {
    seeder.invoke(bank, "deposit", workload::pack_u64(account, 1000));
  }

  std::vector<runtime::Client*> handles;
  for (int c = 0; c < clients; ++c) handles.push_back(&cluster.create_client());

  std::atomic<int> succeeded{0};
  std::atomic<int> timed_out{0};
  const auto start = common::Clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      common::Rng rng(static_cast<std::uint64_t>(c) + 99);
      for (int i = 0; i < ops; ++i) {
        const auto account = rng.uniform(0, kAccounts - 1);
        switch (rng.uniform(0, 3)) {
          case 0:
            handles[c]->invoke(bank, "deposit", workload::pack_u64(account, 10));
            break;
          case 1: {
            // Timed withdraw: waits up to 50 paper-ms for funds.
            const auto reply = workload::unpack_u64(handles[c]->invoke(
                bank, "withdraw", workload::pack_u64(account, 20, 50)));
            (reply[0] == 1 ? succeeded : timed_out).fetch_add(1);
            break;
          }
          case 2:
            handles[c]->invoke(
                bank, "transfer",
                workload::pack_u64(account, rng.uniform(0, kAccounts - 1), 5));
            break;
          default:
            handles[c]->invoke(bank, "balance", workload::pack_u64(account));
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto elapsed = common::Clock::now() - start;

  (void)cluster.wait_drained(
      bank, static_cast<std::uint64_t>(kAccounts) +
                static_cast<std::uint64_t>(clients) * static_cast<std::uint64_t>(ops));
  const auto report = repl::check_group(cluster, bank);
  std::printf("%s: %d clients x %d ops in %.1f ms real; withdrawals ok=%d timeout=%d\n",
              sched::to_string(kind).c_str(), clients, ops,
              std::chrono::duration<double, std::milli>(elapsed).count(),
              succeeded.load(), timed_out.load());
  std::printf("replicas consistent: %s %s\n", report.consistent() ? "yes" : "NO",
              report.detail.c_str());
  return report.consistent() ? 0 : 1;
}
