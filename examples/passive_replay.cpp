// Passive-replication demo: rebuild a replica's state by re-executing
// its logged requests (paper Sec. 1).
//
//   ./passive_replay [SEQ|SAT|MAT|LSA|PDS]
//
// Runs a multithreaded workload against an active group while recording
// one replica's delivered event stream, then re-executes the log on a
// fresh "backup" and compares the state hashes.  Only works because the
// scheduler is deterministic — with free multithreading the backup
// would reorder lock grants and diverge.
#include <cstdio>
#include <thread>
#include <vector>

#include "replication/replay.hpp"
#include "runtime/cluster.hpp"
#include "workload/objects.hpp"

using namespace adets;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "MAT";
  sched::SchedulerKind kind = sched::SchedulerKind::kMat;
  for (const auto candidate :
       {sched::SchedulerKind::kSeq, sched::SchedulerKind::kSat, sched::SchedulerKind::kMat,
        sched::SchedulerKind::kLsa, sched::SchedulerKind::kPds}) {
    if (sched::to_string(candidate) == name) kind = candidate;
  }

  sched::SchedulerConfig config;
  config.pds_thread_pool = 4;
  runtime::Cluster cluster;
  const auto bank = cluster.create_group(
      3, kind, [] { return std::make_unique<workload::BankAccounts>(8); }, config);
  auto log = std::make_shared<runtime::EventLog>();
  cluster.replica(bank, 1).set_event_log(log);

  constexpr int kClients = 4;
  constexpr int kOps = 15;
  std::vector<runtime::Client*> clients;
  for (int c = 0; c < kClients; ++c) clients.push_back(&cluster.create_client());
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      common::Rng rng(static_cast<std::uint64_t>(c) + 7);
      for (int i = 0; i < kOps; ++i) {
        if (rng.uniform(0, 1) == 0) {
          clients[c]->invoke(bank, "deposit",
                             workload::pack_u64(rng.uniform(0, 7), 10));
        } else {
          clients[c]->invoke(
              bank, "transfer",
              workload::pack_u64(rng.uniform(0, 7), rng.uniform(0, 7), 5));
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  if (!cluster.wait_drained(bank, kClients * kOps)) {
    std::printf("live run did not drain!\n");
    return 1;
  }
  const std::uint64_t live = cluster.replica(bank, 1).state_hash();
  std::printf("%s: recorded %zu events for %d requests; live state %016llx\n",
              sched::to_string(kind).c_str(), log->size(), kClients * kOps,
              static_cast<unsigned long long>(live));

  const auto replayed = repl::replay_log(*log, kind, config, [] {
    return std::make_unique<workload::BankAccounts>(8);
  });
  std::printf("backup re-executed %llu requests; state %016llx — %s\n",
              static_cast<unsigned long long>(replayed.requests_executed),
              static_cast<unsigned long long>(replayed.state_hash),
              replayed.state_hash == live ? "states MATCH" : "states DIVERGE (bug!)");
  return replayed.state_hash == live && replayed.complete ? 0 : 1;
}
