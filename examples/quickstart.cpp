// Quickstart: replicate an object with a deterministic multithreading
// strategy in ~40 lines.
//
//   ./quickstart [SEQ|SL|SAT|MAT|LSA|PDS]
//
// Builds a simulated three-replica deployment of a bank-account object,
// runs a few client invocations, and shows that all replicas hold the
// same state afterwards.
#include <cstdio>
#include <string>

#include "runtime/cluster.hpp"
#include "workload/objects.hpp"

using namespace adets;

namespace {

sched::SchedulerKind parse_kind(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "MAT";
  if (name == "SEQ") return sched::SchedulerKind::kSeq;
  if (name == "SL") return sched::SchedulerKind::kSl;
  if (name == "SAT") return sched::SchedulerKind::kSat;
  if (name == "MAT") return sched::SchedulerKind::kMat;
  if (name == "LSA") return sched::SchedulerKind::kLsa;
  if (name == "PDS") return sched::SchedulerKind::kPds;
  std::fprintf(stderr, "unknown scheduler '%s', using MAT\n", name.c_str());
  return sched::SchedulerKind::kMat;
}

}  // namespace

int main(int argc, char** argv) {
  const auto kind = parse_kind(argc, argv);
  std::printf("scheduler: %s\n", sched::to_string(kind).c_str());

  // A cluster simulates the machines and the LAN between them.
  runtime::Cluster cluster;

  // Three active replicas of a bank-account object.  Every replica runs
  // the chosen ADETS scheduler; locks taken by the object go through it
  // and are granted in the same order everywhere.
  const auto bank = cluster.create_group(
      3, kind, [] { return std::make_unique<workload::BankAccounts>(8); });

  // Clients live on their own simulated nodes.
  runtime::Client& alice = cluster.create_client();
  runtime::Client& bob = cluster.create_client();

  alice.invoke(bank, "deposit", workload::pack_u64(/*account=*/0, /*amount=*/100));
  bob.invoke(bank, "deposit", workload::pack_u64(1, 50));
  alice.invoke(bank, "transfer", workload::pack_u64(0, 1, 25));

  const auto balance0 = workload::unpack_u64(alice.invoke(bank, "balance", workload::pack_u64(0)))[0];
  const auto balance1 = workload::unpack_u64(bob.invoke(bank, "balance", workload::pack_u64(1)))[0];
  std::printf("balances: account0=%llu account1=%llu\n",
              static_cast<unsigned long long>(balance0),
              static_cast<unsigned long long>(balance1));

  // All three replicas executed the same requests under deterministic
  // scheduling; their state hashes must agree.
  const auto hashes = cluster.state_hashes(bank);
  std::printf("replica state hashes:");
  bool consistent = true;
  for (const auto hash : hashes) {
    std::printf(" %016llx", static_cast<unsigned long long>(hash));
    consistent = consistent && hash == hashes.front();
  }
  std::printf("\nconsistent: %s\n", consistent ? "yes" : "NO (bug!)");
  return consistent ? 0 : 1;
}
