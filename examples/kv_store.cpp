// Replicated key-value store example: per-bucket deterministic locks,
// compare-and-swap, and blocking "watch" reads that are woken by writers
// through scheduler-managed condition variables.
//
//   ./kv_store [SAT|MAT|LSA|PDS]
#include <cstdio>
#include <string>
#include <thread>

#include "replication/consistency.hpp"
#include "runtime/cluster.hpp"
#include "workload/kvstore.hpp"

using namespace adets;

namespace {

std::pair<bool, std::string> decode_flag_value(const common::Bytes& reply) {
  common::Reader r(reply);
  const bool flag = r.boolean();
  return {flag, r.str()};
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "MAT";
  sched::SchedulerKind kind = sched::SchedulerKind::kMat;
  for (const auto candidate : {sched::SchedulerKind::kSat, sched::SchedulerKind::kMat,
                               sched::SchedulerKind::kLsa, sched::SchedulerKind::kPds}) {
    if (sched::to_string(candidate) == name) kind = candidate;
  }

  runtime::Cluster cluster;
  sched::SchedulerConfig config;
  config.pds_thread_pool = 4;
  const auto store = cluster.create_group(
      3, kind, [] { return std::make_unique<workload::KvStore>(8); }, config);

  runtime::Client& writer = cluster.create_client();
  runtime::Client& watcher = cluster.create_client();

  writer.invoke(store, "put", workload::KvStore::pack_put("greeting", "hello"));
  auto [found, value] =
      decode_flag_value(writer.invoke(store, "get", workload::KvStore::pack_key("greeting")));
  std::printf("get greeting -> %s '%s'\n", found ? "found" : "missing", value.c_str());

  // A blocking watch woken by a concurrent put.
  std::thread watch_thread([&] {
    const auto reply =
        watcher.invoke(store, "watch", workload::KvStore::pack_watch("greeting", 5000));
    auto [changed, new_value] = decode_flag_value(reply);
    std::printf("watch fired: changed=%s value='%s'\n", changed ? "yes" : "no",
                new_value.c_str());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  writer.invoke(store, "put", workload::KvStore::pack_put("greeting", "bonjour"));
  watch_thread.join();

  // Compare-and-swap succeeds once, then fails on the stale expectation.
  const common::Bytes fresh_reply = writer.invoke(
      store, "cas", workload::KvStore::pack_cas("greeting", "bonjour", "hallo"));
  const common::Bytes stale_reply = writer.invoke(
      store, "cas", workload::KvStore::pack_cas("greeting", "bonjour", "hej"));
  common::Reader cas_ok(fresh_reply);
  common::Reader cas_stale(stale_reply);
  std::printf("cas fresh=%d stale=%d\n", cas_ok.boolean(), cas_stale.boolean());

  (void)cluster.wait_drained(store, 6);
  const auto report = repl::check_group(cluster, store);
  std::printf("replicas consistent: %s\n", report.consistent() ? "yes" : "NO");
  return report.consistent() ? 0 : 1;
}
