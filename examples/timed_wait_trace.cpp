// Reproduces the scenario of paper Fig. 1: a time-bounded wait() racing
// a notify() under ADETS-LSA (and, for comparison, the timeout-message
// mechanism of ADETS-SAT/MAT/PDS).
//
//   ./timed_wait_trace [runs]
//
// One request waits on a condition variable with a timeout; a second
// request notifies at approximately the same moment.  Whether the wait
// ends "notified" or "timed out" is inherently racy — the point of the
// deterministic schedulers is that *all replicas agree on the outcome*.
// The example runs the race several times per scheduler and prints the
// outcome and the agreement check.
#include <cstdio>
#include <string>
#include <thread>

#include "runtime/cluster.hpp"
#include "workload/objects.hpp"

using namespace adets;

namespace {

/// A one-shot rendezvous object: "wait_for(ms)" waits bounded on a
/// condvar and reports the outcome; "wake" notifies.
class Rendezvous : public runtime::ReplicatedObject {
 public:
  common::Bytes dispatch(const std::string& method, const common::Bytes& args,
                         runtime::SyncContext& ctx) override {
    const auto a = workload::unpack_u64(args);
    if (method == "wait_for") {
      runtime::DetLock lock(ctx, common::MutexId(1));
      const bool notified = ctx.wait(common::MutexId(1), common::CondVarId(1),
                                     common::paper_ms(static_cast<long long>(a.at(0))));
      outcomes_.push_back(notified ? 1 : 0);
      return workload::pack_u64(notified ? 1 : 0);
    }
    if (method == "wake") {
      runtime::DetLock lock(ctx, common::MutexId(1));
      ctx.notify_one(common::MutexId(1), common::CondVarId(1));
      return {};
    }
    throw std::invalid_argument("unknown method");
  }
  [[nodiscard]] std::uint64_t state_hash() const override {
    std::uint64_t h = 0;
    for (const int o : outcomes_) h = h * 3 + static_cast<std::uint64_t>(o + 1);
    return h;
  }

 private:
  std::vector<int> outcomes_;
};

}  // namespace

int main(int argc, char** argv) {
  const int runs = argc > 1 ? std::atoi(argv[1]) : 5;
  for (const auto kind : {sched::SchedulerKind::kLsa, sched::SchedulerKind::kSat,
                          sched::SchedulerKind::kMat, sched::SchedulerKind::kPds}) {
    std::printf("%s:", sched::to_string(kind).c_str());
    int notified = 0;
    int timed_out = 0;
    bool all_consistent = true;
    for (int run = 0; run < runs; ++run) {
      runtime::Cluster cluster;
      sched::SchedulerConfig config;
      config.pds_thread_pool = 2;
      const auto group = cluster.create_group(
          3, kind, [] { return std::make_unique<Rendezvous>(); }, config);
      runtime::Client& waiter = cluster.create_client();
      runtime::Client& waker = cluster.create_client();

      std::uint64_t outcome = 0;
      std::thread wait_thread([&] {
        // 100 paper-ms bounded wait.
        outcome = workload::unpack_u64(
            waiter.invoke(group, "wait_for", workload::pack_u64(100)))[0];
      });
      // Aim the notify at the timeout instant.
      common::Clock::sleep_paper(common::paper_ms(95));
      waker.invoke(group, "wake", {});
      wait_thread.join();
      (outcome == 1 ? notified : timed_out)++;

      // Let every replica finish both requests before comparing state.
      (void)cluster.wait_drained(group, 2);
      const auto hashes = cluster.state_hashes(group);
      for (const auto h : hashes) all_consistent = all_consistent && h == hashes.front();
    }
    std::printf(" notified=%d timed_out=%d, replicas always agreed: %s\n", notified,
                timed_out, all_consistent ? "yes" : "NO (bug!)");
  }
  return 0;
}
