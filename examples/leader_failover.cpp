// ADETS-LSA leader fail-over demo.
//
//   ./leader_failover
//
// Starts a three-replica LSA group, applies load, crashes the leader
// mid-run, and shows that (a) the group keeps serving requests after
// the view change, (b) the next-lowest replica takes over grant
// recording, and (c) the survivors remain mutually consistent.
#include <cstdio>

#include "runtime/cluster.hpp"
#include "sched/lsa.hpp"
#include "workload/objects.hpp"

using namespace adets;

int main() {
  runtime::Cluster cluster;
  const auto bank = cluster.create_group(
      3, sched::SchedulerKind::kLsa,
      [] { return std::make_unique<workload::BankAccounts>(4); });
  runtime::Client& client = cluster.create_client();

  std::printf("phase 1: 20 deposits with the original leader...\n");
  for (int i = 0; i < 20; ++i) {
    client.invoke(bank, "deposit", workload::pack_u64(i % 4, 5));
  }

  std::printf("crashing the leader (replica 0)...\n");
  cluster.crash_replica(bank, 0);

  std::printf("phase 2: 20 deposits through the fail-over...\n");
  for (int i = 0; i < 20; ++i) {
    client.invoke(bank, "deposit", workload::pack_u64(i % 4, 5),
                  std::chrono::seconds(30));
  }

  auto& survivor1 = dynamic_cast<sched::LsaScheduler&>(cluster.replica(bank, 1).scheduler());
  std::printf("replica 1 is now leader: %s\n", survivor1.is_leader() ? "yes" : "no");

  std::uint64_t total = 0;
  for (int account = 0; account < 4; ++account) {
    total += workload::unpack_u64(
        client.invoke(bank, "balance", workload::pack_u64(account)))[0];
  }
  const bool consistent =
      cluster.replica(bank, 1).state_hash() == cluster.replica(bank, 2).state_hash();
  std::printf("total balance: %llu (expected 200), survivors consistent: %s\n",
              static_cast<unsigned long long>(total), consistent ? "yes" : "NO");
  return (total == 200 && consistent) ? 0 : 1;
}
